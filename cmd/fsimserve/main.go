// Command fsimserve serves FSimχ similarity queries over HTTP: it loads a
// graph, computes the initial self-similarity fixed point, and exposes the
// serving layer's JSON API on -addr.
//
// Usage:
//
//	fsimserve [flags] <graph>
//	fsimserve -snapshot state.fsnap [flags] [<graph>]
//	fsimserve -role leader [flags] <graph>
//	fsimserve -role follower -leader http://leader:8080 [flags]
//
// With -snapshot, the server checkpoints its state to the given file
// (crash-safe: temporary file + rename) on graceful shutdown and — with
// -checkpoint-every N — after every N applied update batches. If the
// snapshot file already exists at startup it wins over the graph
// argument: the server warm starts from it in I/O-bound time, resuming
// the exact graph, scores and version it checkpointed, instead of
// re-parsing text and re-running the fixed point (the snapshot also
// carries the computation options, so the variant/θ/weights flags are
// ignored on a warm start).
//
// Roles (see the README's "Replication & sharding" section): -role leader
// additionally retains a bounded change log (-retain-versions) and serves
// GET /changes and GET /snapshot to replicas. -role follower takes no
// graph argument: it warm-starts from the leader's snapshot (or a shared
// -snapshot file when present), tails the leader's change log every
// -poll-interval, refuses external writes, and gates GET /readyz on
// replication lag (-max-lag). Front a follower fleet with fsimrouter.
//
// Endpoints:
//
//	GET  /topk?u=<node>&k=<n>   top-k most similar nodes for u
//	GET  /query?u=<u>&v=<v>     the single score FSimχ(u, v)
//	POST /match?variant=<x>     match an uploaded query graph (s dp b bj strong)
//	POST /align?variant=<x>     align an uploaded graph with the live graph (b bj)
//	GET  /nodesim?u=&v=&measure=<m>  one pair score (fsim, jaccard, simgram)
//	POST /updates               update-stream body ("+n" / "+e" / "-e" lines)
//	GET  /healthz               liveness and current graph version
//	GET  /readyz                readiness (503 while draining or syncing)
//	GET  /changes?from=<v>      leader only: change-log tail for replicas
//	GET  /snapshot              leader only: binary state snapshot
//	GET  /stats                 serving counters
//
// Every read response is stamped with the graph version it was computed
// at; POST /updates bumps the version and invalidates the result cache, so
// stale scores are never served. SIGINT/SIGTERM trigger a graceful drain:
// in-flight requests finish, new ones receive 503, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsim"
	"fsim/internal/cliflags"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	eng := cliflags.Register(flag.CommandLine, cliflags.Defaults{Theta: 0.6, UBBeta: 0.5, UBAlpha: 0.3})
	iters := flag.Int("iters", 12, "pinned iteration budget (served scores are bit-identical to a fresh Compute at this budget)")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = default 4096)")
	noCache := flag.Bool("no-cache", false, "disable the result cache")
	inflight := flag.Int("inflight", 0, "max concurrent score computations before 429 (0 = 2×GOMAXPROCS, negative = unlimited)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful-drain timeout on shutdown")
	snapshotPath := flag.String("snapshot", "", "snapshot file: warm start from it when present, checkpoint to it on shutdown")
	checkpointEvery := flag.Int("checkpoint-every", 0, "also checkpoint after every N applied update batches (needs -snapshot)")
	role := flag.String("role", "single", "serving role: single, leader, or follower")
	leaderURL := flag.String("leader", "", "leader base URL (required with -role follower)")
	retainVersions := flag.Int("retain-versions", 0, "leader: change-log retention in version steps (0 = default 1024)")
	pollInterval := flag.Duration("poll-interval", 50*time.Millisecond, "follower: change-log tailing cadence")
	maxLag := flag.Uint64("max-lag", 0, "follower: largest version gap to the leader at which /readyz still answers ready")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsimserve [flags] <graph>\n"+
			"       fsimserve -snapshot state.fsnap [flags] [<graph>]\n"+
			"       fsimserve -role leader [flags] <graph>\n"+
			"       fsimserve -role follower -leader http://host:port [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()

	// Flag validation up front: a descriptive refusal beats a server that
	// starts with a silently-nonsensical configuration.
	if *iters <= 0 {
		fatal(fmt.Errorf("-iters must be positive, got %d (the pinned iteration budget is what makes served scores reproducible)", *iters))
	}
	if *cacheEntries < 0 {
		fatal(fmt.Errorf("-cache must be non-negative, got %d (use -no-cache to disable the result cache)", *cacheEntries))
	}
	if *checkpointEvery < 0 {
		fatal(fmt.Errorf("-checkpoint-every must be non-negative, got %d", *checkpointEvery))
	}
	if *checkpointEvery > 0 && *snapshotPath == "" {
		fatal(fmt.Errorf("-checkpoint-every needs -snapshot"))
	}
	if *retainVersions < 0 {
		fatal(fmt.Errorf("-retain-versions must be non-negative, got %d", *retainVersions))
	}
	if *pollInterval <= 0 {
		fatal(fmt.Errorf("-poll-interval must be positive, got %s", *pollInterval))
	}

	sopts := fsim.ServerOptions{
		CacheEntries:    *cacheEntries,
		MaxInFlight:     *inflight,
		SnapshotPath:    *snapshotPath,
		CheckpointEvery: *checkpointEvery,
		RetainVersions:  *retainVersions,
	}
	if *noCache {
		sopts.CacheEntries = -1
	}

	switch *role {
	case "single", "leader":
		if *leaderURL != "" {
			fatal(fmt.Errorf("-leader only applies to -role follower"))
		}
		if *role == "leader" {
			sopts.Role = fsim.RoleLeader
		}
		runServer(sopts, eng, *addr, *iters, *snapshotPath, *drainTimeout)
	case "follower":
		if *leaderURL == "" {
			fatal(fmt.Errorf("-role follower needs -leader"))
		}
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("-role follower takes no graph argument (state comes from the leader)"))
		}
		runFollower(fsim.FollowerOptions{
			Leader:       *leaderURL,
			SnapshotPath: *snapshotPath,
			Server:       sopts,
			PollInterval: *pollInterval,
			MaxLag:       *maxLag,
			Logf: func(format string, args ...any) {
				fmt.Fprintf(os.Stderr, format+"\n", args...)
			},
		}, *addr, *drainTimeout)
	default:
		fatal(fmt.Errorf("unknown -role %q (want single, leader, or follower)", *role))
	}
}

// runServer is the single/leader path: build (or warm-start) a Server and
// serve until a signal drains it.
func runServer(sopts fsim.ServerOptions, eng *cliflags.Engine, addr string, iters int, snapshotPath string, drainTimeout time.Duration) {
	var srv *fsim.Server
	start := time.Now()
	// WarmStart implements the documented fallback contract: cold start
	// only when the snapshot is absent; corruption and every other read
	// failure are fatal, so an operator notices a damaged snapshot instead
	// of paying a surprise recompute and losing the bad file to the next
	// checkpoint.
	mt, err := fsim.WarmStart(snapshotPath)
	fatal(err)
	if mt != nil {
		if flag.NArg() > 1 {
			flag.Usage()
			os.Exit(2)
		}
		srv = fsim.NewServerFromMaintainer(mt, sopts)
		fmt.Fprintf(os.Stderr, "warm start from %s (version %d, %s) in %s; serving on %s\n",
			snapshotPath, mt.Version(), mt.Graph().Stats(),
			time.Since(start).Round(time.Millisecond), addr)
	} else {
		if snapshotPath != "" {
			fmt.Fprintf(os.Stderr, "snapshot %s not present; cold start\n", snapshotPath)
		}
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		g, err := fsim.ReadGraphFile(flag.Arg(0))
		fatal(err)
		fmt.Fprintf(os.Stderr, "G: %s\n", g.Stats())

		opts, err := eng.Options()
		fatal(err)
		// Pin the iteration budget so served scores are reproducible
		// bit-for-bit by a fresh Compute — and by a warm start from a
		// snapshot this process (or `fsim snapshot`) wrote.
		opts = opts.WithPinnedIterations(iters)

		srv, err = fsim.NewServer(g, opts, sopts)
		fatal(err)
		fmt.Fprintf(os.Stderr, "initial fixed point in %s; serving on %s\n", time.Since(start).Round(time.Millisecond), addr)
	}
	serveUntilSignal(srv, addr, drainTimeout, func(ctx context.Context) error { return srv.Shutdown(ctx) })
}

// runFollower is the replica path: warm-start from the leader and serve
// the replication loop's state until a signal drains it.
func runFollower(fopts fsim.FollowerOptions, addr string, drainTimeout time.Duration) {
	start := time.Now()
	f, err := fsim.StartFollower(context.Background(), fopts)
	fatal(err)
	fmt.Fprintf(os.Stderr, "follower of %s at version %d in %s; serving on %s\n",
		fopts.Leader, f.Version(), time.Since(start).Round(time.Millisecond), addr)
	serveUntilSignal(f, addr, drainTimeout, f.Close)
}

// serveUntilSignal runs the HTTP server and performs the graceful drain
// dance on SIGINT/SIGTERM.
func serveUntilSignal(handler http.Handler, addr string, drainTimeout time.Duration, drain func(context.Context) error) {
	httpSrv := &http.Server{Addr: addr, Handler: handler}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		// Drain the serving layer first (new compute/update requests get
		// 503, in-flight ones finish), then stop accepting connections. A
		// drain error — a failed final checkpoint in particular — must not
		// vanish into a zero exit: the operator is the only one left to
		// act on it (the /stats counters it also bumps are gone with the
		// server), so finish the HTTP teardown and exit non-zero.
		exitCode := 0
		if err := drain(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsimserve: drain: %v\n", err)
			exitCode = 1
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsimserve: shutdown: %v\n", err)
			exitCode = 1
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
		os.Exit(exitCode)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsimserve:", err)
		os.Exit(1)
	}
}
