// Command fsimserve serves FSimχ similarity queries over HTTP: it loads a
// graph, computes the initial self-similarity fixed point, and exposes the
// serving layer's JSON API on -addr.
//
// Usage:
//
//	fsimserve [flags] <graph>
//
// Endpoints:
//
//	GET  /topk?u=<node>&k=<n>   top-k most similar nodes for u
//	GET  /query?u=<u>&v=<v>     the single score FSimχ(u, v)
//	POST /updates               update-stream body ("+n" / "+e" / "-e" lines)
//	GET  /healthz               liveness and current graph version
//	GET  /stats                 serving counters
//
// Every read response is stamped with the graph version it was computed
// at; POST /updates bumps the version and invalidates the result cache, so
// stale scores are never served. SIGINT/SIGTERM trigger a graceful drain:
// in-flight requests finish, new ones receive 503, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fsim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	variantFlag := flag.String("variant", "bj", "simulation variant: s, dp, b, or bj")
	wplus := flag.Float64("wplus", 0.4, "out-neighbor weight w+")
	wminus := flag.Float64("wminus", 0.4, "in-neighbor weight w-")
	theta := flag.Float64("theta", 0.6, "label-constrained mapping threshold θ in [0,1]; selectivity keeps queries and updates local")
	ubBeta := flag.Float64("ub", 0.5, "enable upper-bound pruning with this β (negative = off)")
	ubAlpha := flag.Float64("alpha", 0.3, "stand-in factor α for pruned pairs (needs -ub)")
	iters := flag.Int("iters", 12, "pinned iteration budget (served scores are bit-identical to a fresh Compute at this budget)")
	threads := flag.Int("threads", 0, "worker goroutines per computation (0 = GOMAXPROCS)")
	cacheEntries := flag.Int("cache", 0, "result cache entries (0 = default 4096, negative = disable)")
	inflight := flag.Int("inflight", 0, "max concurrent score computations before 429 (0 = 2×GOMAXPROCS, negative = unlimited)")
	drainTimeout := flag.Duration("drain", 10*time.Second, "graceful-drain timeout on shutdown")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsimserve [flags] <graph>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	g, err := fsim.ReadGraphFile(flag.Arg(0))
	fatal(err)
	fmt.Fprintf(os.Stderr, "G: %s\n", g.Stats())

	variant, err := fsim.ParseVariant(*variantFlag)
	fatal(err)
	opts := fsim.DefaultOptions(variant)
	opts.WPlus = *wplus
	opts.WMinus = *wminus
	opts.Theta = *theta
	opts.Threads = *threads
	if *ubBeta >= 0 {
		opts.UpperBoundOpt = &fsim.UpperBound{Alpha: *ubAlpha, Beta: *ubBeta}
	}
	// Pin the iteration budget: an unreachable epsilon makes every
	// computation run exactly -iters rounds, which is what makes served
	// scores reproducible bit-for-bit by a fresh Compute.
	opts.Epsilon = 1e-300
	opts.RelativeEps = false
	opts.MaxIters = *iters

	start := time.Now()
	srv, err := fsim.NewServer(g, opts, fsim.ServerOptions{
		CacheEntries: *cacheEntries,
		MaxInFlight:  *inflight,
	})
	fatal(err)
	fmt.Fprintf(os.Stderr, "initial fixed point in %s; serving on %s\n", time.Since(start).Round(time.Millisecond), *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, draining...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain the serving layer first (new compute/update requests get
		// 503, in-flight ones finish), then stop accepting connections.
		if err := srv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsimserve: drain: %v\n", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsimserve: shutdown: %v\n", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsimserve:", err)
		os.Exit(1)
	}
}
