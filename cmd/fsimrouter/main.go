// Command fsimrouter fronts a replicated fsimserve tier: it consistent-
// hashes GET /topk and GET /query across follower replicas by the query
// node u (so each user's working set concentrates on one replica's
// caches), forwards POST /updates to the leader, and enforces
// read-your-writes — a read carrying the X-Fsim-Min-Version header is
// only answered with a response computed at that graph version or newer.
//
// Usage:
//
//	fsimrouter -leader http://leader:8080 \
//	    -replicas http://f1:8081,http://f2:8082 [flags]
//
// A background probe loop polls every replica's GET /readyz: replicas
// that fail are ejected from the hash ring (their keys fail over to the
// next replica clockwise) and readmitted when the probe recovers —
// ejection flips a health bit without moving ring placements, so a
// bounced replica returns to exactly the keys it served before.
//
// Endpoints: /topk and /query (sharded reads), /updates (forwarded to the
// leader), /healthz and /readyz (router health; /readyz is 503 with no
// healthy replica), /stats (routing counters and per-replica health).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fsim"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	leader := flag.String("leader", "", "leader base URL (required)")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs (required)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per replica on the hash ring (0 = default 64)")
	healthInterval := flag.Duration("health-interval", 250*time.Millisecond, "replica /readyz probe cadence")
	retryWait := flag.Duration("retry-wait", 5*time.Millisecond, "pause before re-asking a lagging replica to reach a read-your-writes floor")
	readRetries := flag.Int("read-retries", 100, "total forwarding attempts per read (version-floor retries and failovers combined)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsimrouter -leader http://host:port -replicas url1,url2,... [flags]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *leader == "" || *replicas == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *vnodes < 0 {
		fatal(fmt.Errorf("-vnodes must be non-negative, got %d", *vnodes))
	}
	if *healthInterval <= 0 {
		fatal(fmt.Errorf("-health-interval must be positive, got %s", *healthInterval))
	}
	if *readRetries < 0 {
		fatal(fmt.Errorf("-read-retries must be non-negative, got %d", *readRetries))
	}
	var replicaURLs []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicaURLs = append(replicaURLs, r)
		}
	}

	rt, err := fsim.NewRouter(fsim.RouterOptions{
		Leader:         *leader,
		Replicas:       replicaURLs,
		VirtualNodes:   *vnodes,
		HealthInterval: *healthInterval,
		RetryWait:      *retryWait,
		ReadRetries:    *readRetries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	})
	fatal(err)
	fmt.Fprintf(os.Stderr, "routing %d replicas for leader %s; serving on %s\n", len(replicaURLs), *leader, *addr)

	httpSrv := &http.Server{Addr: *addr, Handler: rt}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		fatal(err)
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "received %s, shutting down...\n", s)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		rt.Close()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "fsimrouter: shutdown: %v\n", err)
			os.Exit(1)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsimrouter:", err)
		os.Exit(1)
	}
}
