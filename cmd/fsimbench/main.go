// Command fsimbench regenerates the tables and figures of the paper's
// evaluation section (§5) on the synthetic stand-in datasets.
//
// Usage:
//
//	fsimbench [-quick] [-threads N] [-seed S] [-jsondir DIR] <experiment|all> [more experiments...]
//
// Experiments: table2 table5 fig4 fig5 fig6 fig7 fig8 fig9 table6 table7
// table8 table9 delta topk dynamic serve snapshot scale compress cluster
// apps (see DESIGN.md §4 for the experiment index). Nine experiments write
// machine-readable artifacts into -jsondir: delta writes BENCH_delta.json
// (iteration-by-iteration active-pair trajectories of worklist-driven
// delta convergence), topk writes BENCH_topk.json (single-source top-k
// query latency and speedup vs full computation across k and graph size),
// dynamic writes BENCH_dynamic.json (incremental maintenance cost per
// update, single and batched streams, vs full recompute), serve writes
// BENCH_serve.json (HTTP serving-layer throughput with the version-stamped
// result cache and request coalescing vs naive per-request recomputation,
// under a mixed read/update workload), snapshot writes BENCH_snapshot.json
// (binary snapshot save/load vs the cold text-parse + Compute restart
// path), scale writes BENCH_scale.json (nodes × edges × threads sweep
// of the dynamic chunk queue on ≥10⁵-edge power-law graphs: wall-clock,
// speedup, load balance and a cross-thread determinism digest) and
// compress writes BENCH_compress.json (quotient compression across label
// skew: structural-twin blocks, candidate-pair reduction, wall-clock, and
// a bit-parity digest against the uncompressed engine), cluster writes
// BENCH_cluster.json (replicated serving tier over loopback sockets:
// router throughput vs a single server, per-follower replication lag, and
// kill/re-sync recovery time) and apps writes BENCH_apps.json (the served
// application endpoints /match, /align and /nodesim: cached vs naive
// throughput on Zipf-skewed traffic, with per-endpoint cache counters).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"fsim/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads (smoke-test sizes)")
	threads := flag.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 0, "seed offset for all generators")
	jsondir := flag.String("jsondir", "", "directory for JSON artifacts such as BENCH_delta.json (default: working directory)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fsimbench [-quick] [-threads N] [-seed S] [-jsondir DIR] <experiment|all>...\n\nexperiments:\n")
		for _, e := range experiments.Registry() {
			fmt.Fprintf(os.Stderr, "  %-8s %s\n", e.ID, e.Desc)
		}
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	cfg := experiments.Config{
		Out:     os.Stdout,
		Quick:   *quick,
		Threads: *threads,
		Seed:    *seed,
		JSONDir: *jsondir,
	}
	for _, id := range flag.Args() {
		start := time.Now()
		if err := experiments.Run(id, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "fsimbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %.1fs]\n", id, time.Since(start).Seconds())
	}
}
