// Command fsim computes fractional χ-simulation scores between two graphs
// given in the text format ("n <label>" / "e <u> <v>" lines).
//
// Usage:
//
//	fsim [flags] <graph1> [<graph2>]
//	fsim watch [flags] <graph> <updates>
//	fsim snapshot [flags] <graph> <out.fsnap>
//	fsim snapshot -info <file.fsnap>
//	fsim quotient [flags] <graph1> [<graph2>]
//
// With one graph argument, scores are computed from the graph to itself.
// By default the top scoring pairs are printed; use -u to list the best
// matches of a single node, or -all to dump every maintained pair.
//
// The watch subcommand maintains self-similarity scores incrementally
// while streaming updates ("+n <label>" / "+e <u> <v>" / "-e <u> <v>"
// lines) from a file, or from stdin when the updates argument is "-": each
// batch is absorbed by re-converging only its cone of influence, and the
// per-update maintenance stats are reported as the stream progresses. With
// -stats, aggregate counters (batches, applied changes, localized replays
// vs full recomputes, apply latency) are printed on exit for programmatic
// progress observation.
//
// The snapshot subcommand computes the self-similarity fixed point of a
// graph and persists the complete state — graph, candidate structures,
// scores, version — as a crash-safe binary snapshot that fsimserve
// -snapshot warm starts from without recomputing; -info prints the
// contents of an existing snapshot instead.
//
// The quotient subcommand reports how much the quotient-compression
// front-end shrinks a computation: the structural-twin partition of each
// graph (blocks, k-bisimulation classes, quotient-graph size) and the
// candidate-pair reduction, then runs the compressed fixed point and
// prints its timing — the scores are bit-identical to an uncompressed
// run, so the ratio is pure saving.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fsim"
	"fsim/internal/cliflags"
	"fsim/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		watch(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "snapshot" {
		snapshotCmd(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "quotient" {
		quotientCmd(os.Args[2:])
		return
	}
	eng := cliflags.Register(flag.CommandLine, cliflags.Defaults{UBBeta: -1})
	labelFn := flag.String("label", "jw", "label similarity: indicator, edit, or jw")
	topN := flag.Int("top", 20, "print the N best-scoring pairs")
	node := flag.Int("u", -1, "print the best matches of this node of graph1 instead")
	all := flag.Bool("all", false, "dump every maintained pair")
	flag.Parse()

	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: fsim [flags] <graph1> [<graph2>]")
		flag.Usage()
		os.Exit(2)
	}

	g1, err := fsim.ReadGraphFile(flag.Arg(0))
	fatal(err)
	g2 := g1
	if flag.NArg() == 2 {
		g2, err = fsim.ReadGraphFile(flag.Arg(1))
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "G1: %s\nG2: %s\n", g1.Stats(), g2.Stats())

	opts, err := eng.Options()
	fatal(err)
	switch *labelFn {
	case "indicator":
		opts.Label = fsim.Indicator
	case "edit":
		opts.Label = fsim.NormalizedEditDistance
	case "jw":
		opts.Label = fsim.JaroWinkler
	default:
		fatal(fmt.Errorf("unknown -label %q", *labelFn))
	}

	res, err := fsim.Compute(g1, g2, opts)
	fatal(err)
	fmt.Fprintf(os.Stderr, "converged=%v iterations=%d candidates=%d pruned=%d time=%s\n",
		res.Converged, res.Iterations, res.CandidateCount, res.PrunedCount, res.Duration)

	switch {
	case *node >= 0:
		for _, r := range res.TopK(fsim.NodeID(*node), *topN) {
			fmt.Printf("%d\t%d\t%.6f\n", *node, r.Index, r.Score)
		}
	case *all:
		res.ForEach(func(u, v fsim.NodeID, s float64) {
			fmt.Printf("%d\t%d\t%.6f\n", u, v, s)
		})
	default:
		type scored struct {
			u, v fsim.NodeID
			s    float64
		}
		var best []scored
		res.ForEach(func(u, v fsim.NodeID, s float64) {
			if len(best) < *topN {
				best = append(best, scored{u, v, s})
				for i := len(best) - 1; i > 0 && best[i].s > best[i-1].s; i-- {
					best[i], best[i-1] = best[i-1], best[i]
				}
				return
			}
			if s <= best[len(best)-1].s {
				return
			}
			best[len(best)-1] = scored{u, v, s}
			for i := len(best) - 1; i > 0 && best[i].s > best[i-1].s; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		})
		for _, b := range best {
			fmt.Printf("%d\t%d\t%.6f\n", b.u, b.v, b.s)
		}
	}
}

// watch implements the "fsim watch" subcommand: incremental maintenance
// over an update stream.
func watch(args []string) {
	fs := flag.NewFlagSet("fsim watch", flag.ExitOnError)
	eng := cliflags.Register(fs, cliflags.Defaults{UBBeta: -1})
	batch := fs.Int("batch", 1, "apply updates in batches of this size")
	node := fs.Int("u", -1, "print this node's top matches after every batch")
	topN := fs.Int("top", 5, "how many matches -u prints")
	printStats := fs.Bool("stats", false, "print aggregate maintenance counters on exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsim watch [flags] <graph> <updates>  (updates = file or '-' for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}

	g, err := fsim.ReadGraphFile(fs.Arg(0))
	fatal(err)
	fmt.Fprintf(os.Stderr, "G: %s\n", g.Stats())

	opts, err := eng.Options()
	fatal(err)
	mt, err := fsim.NewMaintainer(g, opts)
	fatal(err)
	fmt.Fprintf(os.Stderr, "initial fixed point: %d candidates\n", mt.Index().Candidates().NumCandidates())

	var in io.Reader = os.Stdin
	if name := fs.Arg(1); name != "-" {
		f, err := os.Open(name)
		fatal(err)
		defer f.Close()
		in = f
	}

	// Aggregate maintenance counters for -stats, accumulated through the
	// serving layer's counter types (internal/stats).
	var (
		batches, applied, replays, fulls, rebuilds, iters stats.Counter
		applyLatency                                      stats.Latency
	)

	report := func(pending []fsim.Change) {
		st, err := mt.Apply(pending)
		fatal(err)
		batches.Inc()
		applied.Add(int64(st.Applied))
		iters.Add(int64(st.Iterations))
		applyLatency.Observe(st.Duration)
		switch {
		case st.Applied == 0: // no-op batch: nothing was replayed
		case st.Rebuilt:
			rebuilds.Inc()
		case st.Full:
			fulls.Inc()
		default:
			replays.Inc()
		}
		mode := fmt.Sprintf("cone=%d closure=%d iters=%d", st.Cone, st.LocalPairs, st.Iterations)
		if st.Full {
			mode = "full recompute"
			if st.Rebuilt {
				mode = "store rebuild"
			}
		}
		fmt.Printf("applied %d/%d change(s) in %s (%s)\n", st.Applied, len(pending), st.Duration, mode)
		if *node >= 0 && *node < mt.Graph().NumNodes() {
			top, err := mt.TopK(fsim.NodeID(*node), *topN)
			fatal(err)
			for _, r := range top {
				fmt.Printf("  %d\t%d\t%.6f\n", *node, r.Index, r.Score)
			}
		}
	}

	// Stream line by line so "-" behaves like a tail -f feed: every -batch
	// parsed changes are applied as one batch, and a trailing partial
	// batch is flushed at EOF.
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var pending []fsim.Change
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := fsim.ParseChange(line)
		fatal(err)
		pending = append(pending, c)
		if len(pending) >= *batch {
			report(pending)
			pending = pending[:0]
		}
	}
	fatal(sc.Err())
	if len(pending) > 0 {
		report(pending)
	}
	fmt.Fprintf(os.Stderr, "final: %s\n", mt.Graph().Stats())
	if *printStats {
		fmt.Fprintf(os.Stderr,
			"stats: version=%d batches=%d applied=%d localized=%d full=%d rebuilds=%d iterations=%d mean-apply=%s max-apply=%s\n",
			mt.Version(), batches.Value(), applied.Value(), replays.Value(), fulls.Value(),
			rebuilds.Value(), iters.Value(),
			applyLatency.Mean().Round(time.Microsecond), applyLatency.Max().Round(time.Microsecond))
	}
}

// quotientCmd implements the "fsim quotient" subcommand: compression
// diagnostics for the structural-twin quotient front-end.
func quotientCmd(args []string) {
	fs := flag.NewFlagSet("fsim quotient", flag.ExitOnError)
	eng := cliflags.Register(fs, cliflags.Defaults{UBBeta: -1})
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsim quotient [flags] <graph1> [<graph2>]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() < 1 || fs.NArg() > 2 {
		fs.Usage()
		os.Exit(2)
	}

	g1, err := fsim.ReadGraphFile(fs.Arg(0))
	fatal(err)
	g2 := g1
	if fs.NArg() == 2 {
		g2, err = fsim.ReadGraphFile(fs.Arg(1))
		fatal(err)
	}

	describe := func(name string, g *fsim.Graph, p *fsim.QuotientPartition) {
		n := g.NumNodes()
		q := p.Summarize(g)
		fmt.Printf("%s: %s\n", name, g.Stats())
		fmt.Printf("  twin blocks: %d (%.2fx node compression, k-bisim classes: %d)\n",
			p.NumBlocks(), float64(n)/float64(p.NumBlocks()), p.KBisimClasses)
		fmt.Printf("  quotient graph: %s\n", q.Stats())
	}
	p1 := fsim.QuotientRefine(g1, 2)
	describe("G1", g1, p1)
	if g2 != g1 {
		describe("G2", g2, fsim.QuotientRefine(g2, 2))
	}

	opts, err := eng.Options()
	fatal(err)
	res, err := fsim.CompressedCompute(g1, g2, opts)
	fatal(err)
	fmt.Printf("candidate pairs: %d full -> %d representative (%.2fx pair compression)\n",
		res.CandidateCount, res.RepPairCount,
		float64(res.CandidateCount)/float64(res.RepPairCount))
	fmt.Printf("compressed fixed point: converged=%v iterations=%d time=%s\n",
		res.Converged, res.Iterations, res.Duration.Round(time.Microsecond))
}

// snapshotCmd implements the "fsim snapshot" subcommand: compute the
// self-similarity fixed point and persist it as a binary snapshot, or
// inspect an existing one with -info.
func snapshotCmd(args []string) {
	fs := flag.NewFlagSet("fsim snapshot", flag.ExitOnError)
	eng := cliflags.Register(fs, cliflags.Defaults{Theta: 0.6, UBBeta: 0.5, UBAlpha: 0.3})
	iters := fs.Int("iters", 12, "pinned iteration budget (matches fsimserve's serving contract)")
	info := fs.Bool("info", false, "print the contents of an existing snapshot instead of building one")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsim snapshot [flags] <graph> <out.fsnap>\n       fsim snapshot -info <file.fsnap>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}

	if *info {
		if fs.NArg() != 1 {
			fs.Usage()
			os.Exit(2)
		}
		mt, err := fsim.LoadSnapshot(fs.Arg(0))
		fatal(err)
		cs := mt.Index().Candidates()
		opts := mt.Options()
		ub := "off"
		if opts.UpperBoundOpt != nil {
			ub = fmt.Sprintf("β=%g α=%g", opts.UpperBoundOpt.Beta, opts.UpperBoundOpt.Alpha)
		}
		fmt.Printf("graph: %s\nversion: %d\nvariant: %s  w+=%g w-=%g θ=%g  upper-bound: %s  iters≤%d\ncandidates: %d  pruned: %d\n",
			mt.Graph().Stats(), mt.Version(), opts.Variant, opts.WPlus, opts.WMinus, opts.Theta,
			ub, opts.MaxIters, cs.NumCandidates(), cs.PrunedCount())
		return
	}

	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	g, err := fsim.ReadGraphFile(fs.Arg(0))
	fatal(err)
	fmt.Fprintf(os.Stderr, "G: %s\n", g.Stats())

	opts, err := eng.Options()
	fatal(err)
	// The same pinning as fsimserve, so a server warm started from this
	// snapshot serves scores bit-identical to one cold started with the
	// matching flags.
	opts = opts.WithPinnedIterations(*iters)

	start := time.Now()
	mt, err := fsim.NewMaintainer(g, opts)
	fatal(err)
	computed := time.Since(start)
	start = time.Now()
	fatal(fsim.SaveSnapshot(mt, fs.Arg(1)))
	st, err := os.Stat(fs.Arg(1))
	fatal(err)
	fmt.Fprintf(os.Stderr, "computed fixed point in %s; wrote %s (%d bytes) in %s\n",
		computed.Round(time.Millisecond), fs.Arg(1), st.Size(), time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsim:", err)
		os.Exit(1)
	}
}
