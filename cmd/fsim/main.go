// Command fsim computes fractional χ-simulation scores between two graphs
// given in the text format ("n <label>" / "e <u> <v>" lines).
//
// Usage:
//
//	fsim [flags] <graph1> [<graph2>]
//	fsim watch [flags] <graph> <updates>
//
// With one graph argument, scores are computed from the graph to itself.
// By default the top scoring pairs are printed; use -u to list the best
// matches of a single node, or -all to dump every maintained pair.
//
// The watch subcommand maintains self-similarity scores incrementally
// while streaming updates ("+n <label>" / "+e <u> <v>" / "-e <u> <v>"
// lines) from a file, or from stdin when the updates argument is "-": each
// batch is absorbed by re-converging only its cone of influence, and the
// per-update maintenance stats are reported as the stream progresses. With
// -stats, aggregate counters (batches, applied changes, localized replays
// vs full recomputes, apply latency) are printed on exit for programmatic
// progress observation.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"fsim"
	"fsim/internal/stats"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "watch" {
		watch(os.Args[2:])
		return
	}
	variantFlag := flag.String("variant", "bj", "simulation variant: s, dp, b, or bj")
	wplus := flag.Float64("wplus", 0.4, "out-neighbor weight w+")
	wminus := flag.Float64("wminus", 0.4, "in-neighbor weight w-")
	theta := flag.Float64("theta", 0, "label-constrained mapping threshold θ in [0,1]")
	labelFn := flag.String("label", "jw", "label similarity: indicator, edit, or jw")
	ubBeta := flag.Float64("ub", -1, "enable upper-bound pruning with this β (negative = off)")
	threads := flag.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
	topN := flag.Int("top", 20, "print the N best-scoring pairs")
	node := flag.Int("u", -1, "print the best matches of this node of graph1 instead")
	all := flag.Bool("all", false, "dump every maintained pair")
	flag.Parse()

	if flag.NArg() < 1 || flag.NArg() > 2 {
		fmt.Fprintln(os.Stderr, "usage: fsim [flags] <graph1> [<graph2>]")
		flag.Usage()
		os.Exit(2)
	}

	g1, err := fsim.ReadGraphFile(flag.Arg(0))
	fatal(err)
	g2 := g1
	if flag.NArg() == 2 {
		g2, err = fsim.ReadGraphFile(flag.Arg(1))
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "G1: %s\nG2: %s\n", g1.Stats(), g2.Stats())

	variant, err := fsim.ParseVariant(*variantFlag)
	fatal(err)
	opts := fsim.DefaultOptions(variant)
	opts.WPlus = *wplus
	opts.WMinus = *wminus
	opts.Theta = *theta
	opts.Threads = *threads
	switch *labelFn {
	case "indicator":
		opts.Label = fsim.Indicator
	case "edit":
		opts.Label = fsim.NormalizedEditDistance
	case "jw":
		opts.Label = fsim.JaroWinkler
	default:
		fatal(fmt.Errorf("unknown -label %q", *labelFn))
	}
	if *ubBeta >= 0 {
		opts.UpperBoundOpt = &fsim.UpperBound{Alpha: 0, Beta: *ubBeta}
	}

	res, err := fsim.Compute(g1, g2, opts)
	fatal(err)
	fmt.Fprintf(os.Stderr, "converged=%v iterations=%d candidates=%d pruned=%d time=%s\n",
		res.Converged, res.Iterations, res.CandidateCount, res.PrunedCount, res.Duration)

	switch {
	case *node >= 0:
		for _, r := range res.TopK(fsim.NodeID(*node), *topN) {
			fmt.Printf("%d\t%d\t%.6f\n", *node, r.Index, r.Score)
		}
	case *all:
		res.ForEach(func(u, v fsim.NodeID, s float64) {
			fmt.Printf("%d\t%d\t%.6f\n", u, v, s)
		})
	default:
		type scored struct {
			u, v fsim.NodeID
			s    float64
		}
		var best []scored
		res.ForEach(func(u, v fsim.NodeID, s float64) {
			if len(best) < *topN {
				best = append(best, scored{u, v, s})
				for i := len(best) - 1; i > 0 && best[i].s > best[i-1].s; i-- {
					best[i], best[i-1] = best[i-1], best[i]
				}
				return
			}
			if s <= best[len(best)-1].s {
				return
			}
			best[len(best)-1] = scored{u, v, s}
			for i := len(best) - 1; i > 0 && best[i].s > best[i-1].s; i-- {
				best[i], best[i-1] = best[i-1], best[i]
			}
		})
		for _, b := range best {
			fmt.Printf("%d\t%d\t%.6f\n", b.u, b.v, b.s)
		}
	}
}

// watch implements the "fsim watch" subcommand: incremental maintenance
// over an update stream.
func watch(args []string) {
	fs := flag.NewFlagSet("fsim watch", flag.ExitOnError)
	variantFlag := fs.String("variant", "bj", "simulation variant: s, dp, b, or bj")
	wplus := fs.Float64("wplus", 0.4, "out-neighbor weight w+")
	wminus := fs.Float64("wminus", 0.4, "in-neighbor weight w-")
	theta := fs.Float64("theta", 0, "label-constrained mapping threshold θ in [0,1]")
	ubBeta := fs.Float64("ub", -1, "enable upper-bound pruning with this β (negative = off)")
	ubAlpha := fs.Float64("alpha", 0, "stand-in factor α for pruned pairs (needs -ub)")
	threads := fs.Int("threads", 0, "worker goroutines (0 = GOMAXPROCS)")
	batch := fs.Int("batch", 1, "apply updates in batches of this size")
	node := fs.Int("u", -1, "print this node's top matches after every batch")
	topN := fs.Int("top", 5, "how many matches -u prints")
	printStats := fs.Bool("stats", false, "print aggregate maintenance counters on exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: fsim watch [flags] <graph> <updates>  (updates = file or '-' for stdin)")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}

	g, err := fsim.ReadGraphFile(fs.Arg(0))
	fatal(err)
	fmt.Fprintf(os.Stderr, "G: %s\n", g.Stats())

	variant, err := fsim.ParseVariant(*variantFlag)
	fatal(err)
	opts := fsim.DefaultOptions(variant)
	opts.WPlus = *wplus
	opts.WMinus = *wminus
	opts.Theta = *theta
	opts.Threads = *threads
	if *ubBeta >= 0 {
		opts.UpperBoundOpt = &fsim.UpperBound{Alpha: *ubAlpha, Beta: *ubBeta}
	}
	mt, err := fsim.NewMaintainer(g, opts)
	fatal(err)
	fmt.Fprintf(os.Stderr, "initial fixed point: %d candidates\n", mt.Index().Candidates().NumCandidates())

	var in io.Reader = os.Stdin
	if name := fs.Arg(1); name != "-" {
		f, err := os.Open(name)
		fatal(err)
		defer f.Close()
		in = f
	}

	// Aggregate maintenance counters for -stats, accumulated through the
	// serving layer's counter types (internal/stats).
	var (
		batches, applied, replays, fulls, rebuilds, iters stats.Counter
		applyLatency                                      stats.Latency
	)

	report := func(pending []fsim.Change) {
		st, err := mt.Apply(pending)
		fatal(err)
		batches.Inc()
		applied.Add(int64(st.Applied))
		iters.Add(int64(st.Iterations))
		applyLatency.Observe(st.Duration)
		switch {
		case st.Applied == 0: // no-op batch: nothing was replayed
		case st.Rebuilt:
			rebuilds.Inc()
		case st.Full:
			fulls.Inc()
		default:
			replays.Inc()
		}
		mode := fmt.Sprintf("cone=%d closure=%d iters=%d", st.Cone, st.LocalPairs, st.Iterations)
		if st.Full {
			mode = "full recompute"
			if st.Rebuilt {
				mode = "store rebuild"
			}
		}
		fmt.Printf("applied %d/%d change(s) in %s (%s)\n", st.Applied, len(pending), st.Duration, mode)
		if *node >= 0 && *node < mt.Graph().NumNodes() {
			top, err := mt.TopK(fsim.NodeID(*node), *topN)
			fatal(err)
			for _, r := range top {
				fmt.Printf("  %d\t%d\t%.6f\n", *node, r.Index, r.Score)
			}
		}
	}

	// Stream line by line so "-" behaves like a tail -f feed: every -batch
	// parsed changes are applied as one batch, and a trailing partial
	// batch is flushed at EOF.
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var pending []fsim.Change
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		c, err := fsim.ParseChange(line)
		fatal(err)
		pending = append(pending, c)
		if len(pending) >= *batch {
			report(pending)
			pending = pending[:0]
		}
	}
	fatal(sc.Err())
	if len(pending) > 0 {
		report(pending)
	}
	fmt.Fprintf(os.Stderr, "final: %s\n", mt.Graph().Stats())
	if *printStats {
		fmt.Fprintf(os.Stderr,
			"stats: version=%d batches=%d applied=%d localized=%d full=%d rebuilds=%d iterations=%d mean-apply=%s max-apply=%s\n",
			mt.Version(), batches.Value(), applied.Value(), replays.Value(), fulls.Value(),
			rebuilds.Value(), iters.Value(),
			applyLatency.Mean().Round(time.Microsecond), applyLatency.Max().Round(time.Microsecond))
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "fsim:", err)
		os.Exit(1)
	}
}
