// Command fsimgen writes the synthetic Table 4 stand-in datasets (and
// perturbed variants) to graph text files consumable by cmd/fsim.
//
// Usage:
//
//	fsimgen [-scale N] [-seed S] [-errors R] [-labelerrors R] [-density F] <dataset> <out.txt>
//
// Datasets: Yeast, Cora, Wiki, JDK, NELL, GP, Amazon, ACMCit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fsim/internal/dataset"
)

func main() {
	scale := flag.Int("scale", 0, "down-scale factor (0 = per-dataset default)")
	seed := flag.Int64("seed", 0, "seed offset")
	structural := flag.Float64("errors", 0, "structural error ratio (edges added/removed)")
	labels := flag.Float64("labelerrors", 0, "label error ratio (nodes corrupted)")
	density := flag.Int("density", 1, "density multiplier (extra random edges)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintf(os.Stderr, "usage: fsimgen [flags] <dataset> <out.txt>\ndatasets: %s\n",
			strings.Join(dataset.DatasetNames(), ", "))
		os.Exit(2)
	}

	spec, err := dataset.PaperSpec(flag.Arg(0), *scale)
	if err != nil {
		fatal(err)
	}
	spec.Seed += *seed
	g := spec.Generate()
	if *structural > 0 {
		g = dataset.InjectStructuralErrors(g, *structural, spec.Seed+101)
	}
	if *labels > 0 {
		g = dataset.InjectLabelErrors(g, *labels, spec.Seed+103)
	}
	if *density > 1 {
		g = dataset.Densify(g, *density, spec.Seed+107)
	}
	if err := g.WriteFile(flag.Arg(1)); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s -> %s: %s\n", flag.Arg(0), flag.Arg(1), g.Stats())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsimgen:", err)
	os.Exit(1)
}
