// Command fsimgen writes the synthetic Table 4 stand-in datasets (and
// perturbed variants) to graph text files consumable by cmd/fsim.
//
// Usage:
//
//	fsimgen [-scale N] [-seed S] [-errors R] [-labelerrors R] [-density F] <dataset> <out.txt>
//	fsimgen -nodes N -edges M [-labels L] [-alpha A] [-seed S] [...] <out.txt>
//
// Datasets: Yeast, Cora, Wiki, JDK, NELL, GP, Amazon, ACMCit.
//
// The second form generates a free-form power-law graph instead of a
// Table 4 stand-in: N nodes, M edges, a label vocabulary of L (default
// 32) and degree exponent A (default 1.0). The perturbation flags
// (-errors, -labelerrors, -density) apply to both forms.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fsim/internal/dataset"
)

func main() {
	scale := flag.Int("scale", 0, "down-scale factor (0 = per-dataset default)")
	seed := flag.Int64("seed", 0, "seed offset")
	structural := flag.Float64("errors", 0, "structural error ratio (edges added/removed)")
	labels := flag.Float64("labelerrors", 0, "label error ratio (nodes corrupted)")
	density := flag.Int("density", 1, "density multiplier (extra random edges)")
	nodes := flag.Int("nodes", 0, "power-law mode: node count (enables free-form generation)")
	edges := flag.Int("edges", 0, "power-law mode: edge count")
	vocab := flag.Int("labels", 32, "power-law mode: label vocabulary size")
	alpha := flag.Float64("alpha", 1.0, "power-law mode: degree exponent")
	flag.Parse()

	var spec dataset.Spec
	switch {
	case *nodes > 0: // free-form power-law mode: single positional out.txt
		if flag.NArg() != 1 {
			usage()
		}
		if *edges <= 0 {
			fatal(fmt.Errorf("-nodes requires -edges > 0"))
		}
		spec = dataset.PowerLaw(*nodes, *edges, *vocab, *alpha, 42)
	case flag.NArg() == 2:
		var err error
		spec, err = dataset.PaperSpec(flag.Arg(0), *scale)
		if err != nil {
			fatal(err)
		}
	default:
		usage()
	}
	spec.Seed += *seed
	g := spec.Generate()
	if *structural > 0 {
		g = dataset.InjectStructuralErrors(g, *structural, spec.Seed+101)
	}
	if *labels > 0 {
		g = dataset.InjectLabelErrors(g, *labels, spec.Seed+103)
	}
	if *density > 1 {
		g = dataset.Densify(g, *density, spec.Seed+107)
	}
	out := flag.Arg(flag.NArg() - 1)
	if err := g.WriteFile(out); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%s -> %s: %s\n", spec.Name, out, g.Stats())
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: fsimgen [flags] <dataset> <out.txt>\n"+
		"       fsimgen -nodes N -edges M [-labels L] [-alpha A] [flags] <out.txt>\n"+
		"datasets: %s\n",
		strings.Join(dataset.DatasetNames(), ", "))
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fsimgen:", err)
	os.Exit(1)
}
