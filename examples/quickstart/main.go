// Quickstart: build the paper's Figure 1 example by hand, check the exact
// ("yes-or-no") χ-simulation verdicts, and quantify how nearly each
// candidate simulates node u with fractional χ-simulation — reproducing
// the structure of the paper's Table 2.
package main

import (
	"fmt"

	"fsim"
)

func main() {
	// Graph P: node u (circle) with two hexagon children and one pentagon
	// child — the pattern of the paper's Figure 1.
	pb := fsim.NewBuilder()
	u := pb.AddNode("circle")
	pb.MustAddEdge(u, pb.AddNode("hexagon"))
	pb.MustAddEdge(u, pb.AddNode("hexagon"))
	pb.MustAddEdge(u, pb.AddNode("pentagon"))
	p := pb.Build()

	// Graph G2: four candidate nodes with progressively better matches.
	gb := fsim.NewBuilder()
	v1 := gb.AddNode("circle") // no pentagon → not even simply simulated
	gb.MustAddEdge(v1, gb.AddNode("hexagon"))
	gb.MustAddEdge(v1, gb.AddNode("hexagon"))
	v2 := gb.AddNode("circle") // one hexagon covers both of u's → s, b hold
	gb.MustAddEdge(v2, gb.AddNode("hexagon"))
	gb.MustAddEdge(v2, gb.AddNode("pentagon"))
	v3 := gb.AddNode("circle") // extra square neighbor → b fails
	gb.MustAddEdge(v3, gb.AddNode("hexagon"))
	gb.MustAddEdge(v3, gb.AddNode("hexagon"))
	gb.MustAddEdge(v3, gb.AddNode("pentagon"))
	gb.MustAddEdge(v3, gb.AddNode("square"))
	v4 := gb.AddNode("circle") // exact mirror → all four variants hold
	gb.MustAddEdge(v4, gb.AddNode("hexagon"))
	gb.MustAddEdge(v4, gb.AddNode("hexagon"))
	gb.MustAddEdge(v4, gb.AddNode("pentagon"))
	g2 := gb.Build()

	candidates := []fsim.NodeID{v1, v2, v3, v4}

	fmt.Println("Exact and fractional χ-simulation of u by v1..v4:")
	fmt.Println()
	fmt.Printf("%-16s %-12s %-12s %-12s %-12s\n", "variant", "(u,v1)", "(u,v2)", "(u,v3)", "(u,v4)")
	for _, variant := range fsim.Variants {
		rel := fsim.MaximalSimulation(p, g2, variant)

		opts := fsim.DefaultOptions(variant)
		opts.Label = fsim.Indicator
		res, err := fsim.Compute(p, g2, opts)
		if err != nil {
			panic(err)
		}

		fmt.Printf("%-16s", variant.String()+"-simulation")
		for _, v := range candidates {
			mark := "×"
			if rel.Contains(int(u), int(v)) {
				mark = "✓"
			}
			fmt.Printf(" %s %.2f      ", mark, res.Score(u, v))
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Reading: ✓ cells score exactly 1.00 (simulation definiteness, P2);")
	fmt.Println("× cells quantify HOW CLOSE the failed simulation is — the paper's")
	fmt.Println("remedy for the coarse yes-or-no semantics of simulation.")
}
