// Pattern matching on a product co-purchase graph (the paper's §5.4 first
// case study, Amazon workload): extract a query subgraph, corrupt it with
// structural and label noise, and compare exact strong simulation — which
// returns nothing once the query is noisy — against FSims-seeded
// approximate matching, which still recovers the region.
package main

import (
	"fmt"

	"fsim"
	"fsim/internal/dataset"
	"fsim/internal/exact"
	"fsim/internal/pattern"
)

func main() {
	// A scaled-down Amazon-like co-purchase graph (82 category labels,
	// power-law degrees; see internal/dataset for the Table 4 stand-ins).
	spec := dataset.MustPaperSpec("Amazon", 400)
	g := spec.Generate()
	fmt.Println("data graph:", g.Stats())

	matchers := []pattern.Matcher{
		pattern.StrongSimMatcher{},
		&pattern.TSpanMatcher{Budget: 3},
		&pattern.FSimMatcher{Variant: exact.S},
	}

	for _, sc := range []pattern.Scenario{pattern.Exact, pattern.NoisyE, pattern.Combined} {
		fmt.Printf("\n--- scenario %s (up to 33%% noise) ---\n", sc)
		for qi := 0; qi < 5; qi++ {
			q := pattern.GenerateQuery(g, 6+qi, sc, 0.33, int64(100+qi))
			if q == nil {
				continue
			}
			fmt.Printf("query %d (%d nodes, %d edges): ", qi, q.Graph.NumNodes(), q.Graph.NumEdges())
			for _, m := range matchers {
				match := m.Match(q.Graph, g)
				if match == nil {
					fmt.Printf("%s: no result  ", m.Name())
					continue
				}
				fmt.Printf("%s: F1=%.2f  ", m.Name(), pattern.F1(match, q.Truth))
			}
			fmt.Println()
		}
	}

	fmt.Println()
	fmt.Println("Strong simulation is exact by nature: noise usually leaves it with no")
	fmt.Println("result. FSims quantifies partial simulation, so a top-1 match region")
	fmt.Println("can always be produced and scored (the paper's strength S1).")
	_ = fsim.S // the public API re-exports the variants used above
}
