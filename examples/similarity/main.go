// Node similarity on a bibliographic network (the paper's §5.4 second case
// study, DBIS workload): rank the venues most similar to "WWW". The
// network contains duplicate venue identities (WWW1/WWW2/WWW3) sharing
// WWW's author community; a good similarity measure should surface them.
package main

import (
	"fmt"

	"fsim"
	"fsim/internal/exact"
	"fsim/internal/nodesim"
)

func main() {
	net := nodesim.Generate(nodesim.Params{Authors: 300, PapersPerAuthor: 3, Seed: 7})
	fmt.Println("bibliographic graph:", net.G.Stats())
	fmt.Printf("venues: %d (including the planted duplicates WWW1/WWW2/WWW3)\n\n", len(net.Venues))

	subject := net.VenueIndex("WWW")
	measures := []nodesim.Measure{
		nodesim.PathSim{},
		nodesim.NSimGram{},
		&nodesim.FSimMeasure{Variant: exact.B},
		&nodesim.FSimMeasure{Variant: exact.BJ},
	}

	for _, m := range measures {
		scores := m.VenueScores(net)
		fmt.Printf("%-9s top-5 for WWW: ", m.Name())
		for _, r := range nodesim.TopVenues(scores, subject, 5) {
			fmt.Printf("%s(%.3f) ", net.VenueName[r.Index], r.Score)
		}
		fmt.Printf(" | nDCG@15 = %.3f\n", nodesim.MeanNDCG(net, scores, 15))
	}

	fmt.Println()
	fmt.Println("Fractional bijective simulation (FSim_bj) treats the duplicates'")
	fmt.Println("author communities as near-bijectively matched neighborhoods, which")
	fmt.Println("is why the paper proposes it as a node similarity measure (P3:")
	fmt.Println("converse-invariant variants are symmetric).")
	_ = fsim.BJ
}
