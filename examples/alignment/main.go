// RDF graph alignment (the paper's §5.4 third case study): align two
// versions of an evolving graph whose node identities persist, comparing
// exact bisimulation (collapses under drift), k-bisimulation signatures,
// and fractional b-simulation alignment (Au = argmax_v FSim_b(u, v)).
package main

import (
	"fmt"

	"fsim"
	"fsim/internal/align"
	"fsim/internal/dataset"
	"fsim/internal/exact"
)

func main() {
	spec := dataset.MustPaperSpec("GP", 200) // biological-style graph, 8 labels
	base := spec.Generate()
	g1, g2, _ := align.Versions(base, align.Evolve{NodeGrowth: 0.04, EdgeChurn: 0.03, Seed: 5})
	fmt.Println("G1:", g1.Stats())
	fmt.Println("G2:", g2.Stats(), "(evolved: 4% node growth, 3% edge churn)")
	fmt.Println()

	aligners := []align.Aligner{
		align.ExactBisimAligner{},
		&align.KBisimAligner{K: 2},
		align.EWSAligner{},
		&align.FSimAligner{Variant: exact.B},
	}
	for _, a := range aligners {
		result := a.Align(g1, g2)
		fmt.Printf("%-8s F1 = %5.1f%%\n", a.Name(), 100*align.F1(result, g2.NumNodes()))
	}

	fmt.Println()
	fmt.Println("Exact bisimulation demands perfect structural agreement, so graph")
	fmt.Println("evolution destroys it; the fractional score degrades gracefully and")
	fmt.Println("argmax alignment recovers most identities (the paper's Table 9).")
	_ = fsim.B
}
